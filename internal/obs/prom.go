package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry is a dependency-free Prometheus metrics registry: counters,
// gauges, gauge callbacks, and histograms, rendered in the classic text
// exposition format (version 0.0.4) or, on request, OpenMetrics 1.0
// (the only format in which exemplars are legal syntax).
//
// One mutex guards every mutation and the whole of WriteText, so a
// scrape observes a single consistent snapshot of all families — a
// request counted in requests_total is also counted in exactly one of
// the outcome counters, which the old per-atomic /metrics could not
// promise. Mutations are a map lookup and a float add under an
// uncontended lock; gauge callbacks run during WriteText and must not
// touch the registry.
type Registry struct {
	mu     sync.Mutex
	fams   []*Family
	byName map[string]*Family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*Family{}}
}

// Family is one named metric family, possibly labelled.
type Family struct {
	r       *Registry
	name    string
	help    string
	kind    string // "counter", "gauge", "histogram"
	labels  []string
	buckets []float64 // histograms only
	series  map[string]*series
	fn      func() float64 // gauge callback; nil otherwise
}

// series is one label combination's state.
type series struct {
	labelVals []string
	val       float64
	counts    []float64 // histogram: per-bucket (cumulative at render)
	sum       float64
	n         float64
	// exemplars holds the most recent exemplar per bucket (histograms
	// with ObserveExemplar callers only; lazily allocated). Exemplars
	// are how a trace ID rides along with a latency histogram without
	// becoming a label — labels index series (bounded cardinality),
	// exemplars annotate samples (one per bucket, last-write-wins).
	exemplars []promExemplar
}

// promExemplar is one OpenMetrics-style exemplar: a single label pair
// (trace_id for this codebase) and the observed value.
type promExemplar struct {
	key, val string
	obs      float64
	set      bool
}

// register adds a family, panicking on redefinition — metric names are
// program constants, so a clash is a bug, not an operational state.
func (r *Registry) register(name, help, kind string, buckets []float64, fn func() float64, labels []string) *Family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byName[name]; ok {
		panic(fmt.Sprintf("obs: metric %q registered twice", name))
	}
	f := &Family{
		r: r, name: name, help: help, kind: kind,
		labels: labels, buckets: buckets, fn: fn,
		series: map[string]*series{},
	}
	r.fams = append(r.fams, f)
	r.byName[name] = f
	return f
}

// Counter registers a counter family (name should end in _total).
func (r *Registry) Counter(name, help string, labels ...string) *Family {
	return r.register(name, help, "counter", nil, nil, labels)
}

// Gauge registers a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *Family {
	return r.register(name, help, "gauge", nil, nil, labels)
}

// GaugeFunc registers an unlabelled gauge whose value is read from fn
// at scrape time. fn must not use the registry (the lock is held).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, "gauge", nil, fn, nil)
}

// CounterFunc registers an unlabelled counter whose value is read from
// fn at scrape time. The name should end in _total and fn must be
// monotonically non-decreasing (it renders as TYPE counter); fn must
// not use the registry (the lock is held).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, "counter", nil, fn, nil)
}

// Histogram registers a histogram family with the given upper bounds
// (ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Family {
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not ascending", name))
		}
	}
	return r.register(name, help, "histogram", buckets, nil, labels)
}

// ExpBuckets returns n exponential bucket bounds starting at start with
// the given growth factor — the usual latency-histogram shape.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// at returns (creating if needed) the series for the label values.
// Caller holds r.mu.
func (f *Family) at(labelVals []string) *series {
	if len(labelVals) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label value(s), got %d",
			f.name, len(f.labels), len(labelVals)))
	}
	key := strings.Join(labelVals, "\xff")
	s, ok := f.series[key]
	if !ok {
		s = &series{labelVals: append([]string(nil), labelVals...)}
		if f.kind == "histogram" {
			s.counts = make([]float64, len(f.buckets)+1)
		}
		f.series[key] = s
	}
	return s
}

// Add increments the series by delta.
func (f *Family) Add(delta float64, labelVals ...string) {
	f.r.mu.Lock()
	f.at(labelVals).val += delta
	f.r.mu.Unlock()
}

// Inc increments the series by one.
func (f *Family) Inc(labelVals ...string) { f.Add(1, labelVals...) }

// Set sets a gauge series.
func (f *Family) Set(v float64, labelVals ...string) {
	f.r.mu.Lock()
	f.at(labelVals).val = v
	f.r.mu.Unlock()
}

// Observe records one histogram observation.
func (f *Family) Observe(v float64, labelVals ...string) {
	f.r.mu.Lock()
	s := f.at(labelVals)
	i := sort.SearchFloat64s(f.buckets, v) // first bucket with bound >= v
	s.counts[i]++
	s.sum += v
	s.n++
	f.r.mu.Unlock()
}

// ObserveExemplar is Observe plus an exemplar: the (exKey, exVal) pair
// — trace_id and its hex value on the latency families — is attached
// to the bucket the observation lands in, replacing that bucket's
// previous exemplar. The pair annotates the rendered bucket line in
// OpenMetrics exemplar syntax (WriteOpenMetrics only — the 0.0.4 text
// render must omit it or classic parsers fail the scrape); it never
// becomes a series label, which is what keeps trace IDs out of the
// cardinality budget. An empty exVal degrades to a plain Observe.
func (f *Family) ObserveExemplar(v float64, exKey, exVal string, labelVals ...string) {
	if exVal == "" {
		f.Observe(v, labelVals...)
		return
	}
	f.r.mu.Lock()
	s := f.at(labelVals)
	i := sort.SearchFloat64s(f.buckets, v)
	s.counts[i]++
	s.sum += v
	s.n++
	if s.exemplars == nil {
		s.exemplars = make([]promExemplar, len(f.buckets)+1)
	}
	s.exemplars[i] = promExemplar{key: exKey, val: exVal, obs: v, set: true}
	f.r.mu.Unlock()
}

// Value returns a series' current value (counters and gauges; the
// count for histograms). Zero for a never-touched series.
func (f *Family) Value(labelVals ...string) float64 {
	f.r.mu.Lock()
	defer f.r.mu.Unlock()
	s := f.at(labelVals)
	if f.kind == "histogram" {
		return s.n
	}
	return s.val
}

// WriteText renders the whole registry in the classic Prometheus text
// exposition format (version 0.0.4) under one lock — the consistent
// snapshot. Exemplars are NOT rendered: exemplar syntax only exists in
// OpenMetrics, and the 0.0.4 parser fails the whole scrape on the '#'
// after a sample value. Scrapers that want exemplars negotiate
// WriteOpenMetrics via the Accept header.
func (r *Registry) WriteText(w io.Writer) error {
	return r.write(w, false)
}

// WriteOpenMetrics renders the registry in the OpenMetrics 1.0 text
// format: counter families are declared without their _total suffix
// (samples keep it, per the spec) and histogram buckets carry their
// exemplars. It writes the metric body only — a complete OpenMetrics
// document must end with a "# EOF" line, which the caller appends after
// any additional families it renders.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	return r.write(w, true)
}

// AcceptsOpenMetrics reports whether an HTTP Accept header value asks
// for the OpenMetrics text format. A substring test is enough for the
// clients that matter (Prometheus sends
// "application/openmetrics-text;version=..." with q-weights; curl and
// stock browsers never mention it), so no full content negotiation.
func AcceptsOpenMetrics(accept string) bool {
	return strings.Contains(accept, "application/openmetrics-text")
}

// OpenMetricsContentType is the Content-Type an OpenMetrics render is
// served under.
const OpenMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

func (r *Registry) write(w io.Writer, openMetrics bool) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	for _, f := range r.fams {
		famName := f.name
		if openMetrics && f.kind == "counter" {
			// OpenMetrics declares the counter family bare; the _total
			// suffix belongs to the sample names.
			famName = strings.TrimSuffix(famName, "_total")
		}
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", famName, escapeHelp(f.help), famName, f.kind)
		if f.fn != nil {
			fmt.Fprintf(&b, "%s %s\n", f.name, formatFloat(f.fn()))
			continue
		}
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		if len(keys) == 0 && len(f.labels) == 0 && f.kind != "histogram" {
			// An unlabelled counter/gauge always exposes its zero value,
			// so rate() and dashboards see the series from boot.
			fmt.Fprintf(&b, "%s 0\n", f.name)
		}
		for _, k := range keys {
			s := f.series[k]
			if f.kind == "histogram" {
				exemplars := s.exemplars
				if !openMetrics {
					exemplars = nil
				}
				cum := 0.0
				for i, bound := range f.buckets {
					cum += s.counts[i]
					fmt.Fprintf(&b, "%s_bucket%s %s%s\n", f.name,
						labelStr(f.labels, s.labelVals, "le", formatFloat(bound)), formatFloat(cum),
						exemplarStr(exemplars, i))
				}
				cum += s.counts[len(f.buckets)]
				fmt.Fprintf(&b, "%s_bucket%s %s%s\n", f.name,
					labelStr(f.labels, s.labelVals, "le", "+Inf"), formatFloat(cum),
					exemplarStr(exemplars, len(f.buckets)))
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, labelStr(f.labels, s.labelVals, "", ""), formatFloat(s.sum))
				fmt.Fprintf(&b, "%s_count%s %s\n", f.name, labelStr(f.labels, s.labelVals, "", ""), formatFloat(cum))
				continue
			}
			fmt.Fprintf(&b, "%s%s %s\n", f.name, labelStr(f.labels, s.labelVals, "", ""), formatFloat(s.val))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// exemplarStr renders a bucket's exemplar in OpenMetrics syntax
// (" # {k=\"v\"} value"), or "" when the bucket has none.
func exemplarStr(exemplars []promExemplar, i int) string {
	if i >= len(exemplars) || !exemplars[i].set {
		return ""
	}
	e := exemplars[i]
	return fmt.Sprintf(" # {%s=%q} %s", e.key, e.val, formatFloat(e.obs))
}

// labelStr renders a label set (plus one optional extra pair, used for
// le) as {k="v",...}, or "" when empty.
func labelStr(names, vals []string, extraK, extraV string) string {
	if len(names) == 0 && extraK == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", n, vals[i])
	}
	if extraK != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraK, extraV)
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a sample value the way Prometheus clients do:
// integers without exponent, +Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
