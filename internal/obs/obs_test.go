package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

// A nil trace must absorb the whole span API without allocating or
// panicking — that is the disabled pipeline's fast path.
func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	sp := tr.Start("phase")
	sp.Int("n", 3).Str("k", "v")
	sp.End(OutcomeOK)
	tr.Finish(OutcomeOK)
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("FromContext on a bare context = %v, want nil", got)
	}
	if ctx := WithTrace(context.Background(), nil); FromContext(ctx) != nil {
		t.Fatal("WithTrace(nil) should not attach anything")
	}
}

func TestTraceSpansAndContext(t *testing.T) {
	tr := NewTrace("req-1", "daxpy")
	ctx := WithTrace(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("trace did not round-trip through the context")
	}
	a := tr.Start("mindist").Int("ii", 7)
	a.End(OutcomeOK)
	b := tr.Start("attempt").Int("ii", 7)
	b.End(OutcomeDeadline)
	tr.Finish(OutcomeBudgetExhausted)
	if len(tr.Spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(tr.Spans))
	}
	if tr.Spans[0].Dur <= 0 || tr.Spans[1].Dur <= 0 {
		t.Fatal("span durations not recorded")
	}
	if tr.Dur <= 0 || tr.Outcome != OutcomeBudgetExhausted {
		t.Fatalf("trace not finished: %+v", tr)
	}
}

// The culprit is the most recent span whose outcome matches the
// trace's — the phase that was running when the budget tripped.
func TestCulpritElection(t *testing.T) {
	tr := NewTrace("r", "l")
	tr.Start("mindist").End(OutcomeOK)
	tr.Start("attempt").End(OutcomeDeadline)
	tr.Finish(OutcomeDeadline)
	if tr.Culprit != "attempt" {
		t.Fatalf("culprit = %q, want attempt", tr.Culprit)
	}

	// No matching span: fall back to the longest one.
	tr2 := NewTrace("r", "l")
	s1 := tr2.Start("short")
	s1.End(OutcomeOK)
	s2 := tr2.Start("long")
	s2.End(OutcomeOK)
	s2.Dur = time.Second
	tr2.Finish(OutcomeError)
	if tr2.Culprit != "long" {
		t.Fatalf("culprit = %q, want long", tr2.Culprit)
	}
}

func TestSpanDoubleEndIgnored(t *testing.T) {
	tr := NewTrace("r", "l")
	sp := tr.Start("x")
	sp.End(OutcomeOK)
	d := sp.Dur
	sp.End(OutcomeError)
	if sp.Dur != d || sp.Outcome != OutcomeOK {
		t.Fatal("second End should be a no-op")
	}
}

func TestFlightRecorderRing(t *testing.T) {
	r := NewFlightRecorder(3)
	for i := 0; i < 5; i++ {
		tr := NewTrace(fmt.Sprintf("req-%d", i), "loop")
		tr.Finish(OutcomeOK)
		r.Record(tr)
	}
	if r.Len() != 3 || r.Total() != 5 {
		t.Fatalf("Len=%d Total=%d, want 3 and 5", r.Len(), r.Total())
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot holds %d, want 3", len(snap))
	}
	for i, want := range []string{"req-2", "req-3", "req-4"} {
		if snap[i].ID != want {
			t.Fatalf("snapshot[%d] = %s, want %s (oldest-first)", i, snap[i].ID, want)
		}
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Total   uint64            `json:"total_recorded"`
		Entries []json.RawMessage `json:"entries"`
	}
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("dump is not JSON: %v", err)
	}
	if dump.Total != 5 || len(dump.Entries) != 3 {
		t.Fatalf("dump total=%d entries=%d", dump.Total, len(dump.Entries))
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	r := NewFlightRecorder(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr := NewTrace("id", "loop")
				tr.Finish(OutcomeOK)
				r.Record(tr)
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if r.Total() != 1600 {
		t.Fatalf("Total = %d, want 1600", r.Total())
	}
}

func TestChromeTraceExport(t *testing.T) {
	tr := NewTrace("req-1", "daxpy")
	tr.Scheduler = "slack"
	tr.Start("mindist").Int("ii", 7).End(OutcomeOK)
	tr.Start("attempt").Int("ii", 7).Str("policy", "slack").End(OutcomeOK)
	tr.Finish(OutcomeOK)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, []*Trace{tr, nil}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   *float64       `json:"ts"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not JSON: %v\n%s", err, buf.String())
	}
	// One metadata event, one compile event, two phase events.
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("got %d events, want 4:\n%s", len(doc.TraceEvents), buf.String())
	}
	byPh := map[string]int{}
	for _, e := range doc.TraceEvents {
		byPh[e.Ph]++
		if e.Ph == "X" {
			if e.TS == nil {
				t.Fatalf("complete event %q missing ts", e.Name)
			}
			if e.PID != 1 || e.TID != 1 {
				t.Fatalf("event %q on pid/tid %d/%d", e.Name, e.PID, e.TID)
			}
		}
	}
	if byPh["M"] != 1 || byPh["X"] != 3 {
		t.Fatalf("event phases %v, want 1 M + 3 X", byPh)
	}
}
