package obs

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// W3C Trace Context (https://www.w3.org/TR/trace-context/): the
// cross-process half of the tracer. A request arrives with (or without)
// a `traceparent` header; the server parses it into a SpanContext,
// mints its own root span ID under the caller's TraceID, threads the
// context through the pipeline alongside the Trace, and returns the
// `traceparent` of its root span so the caller can stitch the hop into
// its own trace. Work triggered asynchronously by a request — the
// refine pool's exact re-search, a warm-start compile — runs under a
// fresh TraceID but carries a span *link* back to the originating
// context, the OTLP relationship for "caused by, but not nested under".

// TraceID is the 16-byte W3C trace identifier. The zero value is
// invalid per the spec and doubles as "no trace context attached".
type TraceID [16]byte

// SpanID is the 8-byte W3C span (parent) identifier. All-zero is
// invalid.
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the ID is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the ID as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String renders the ID as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// MarshalJSON renders the ID as a hex string, the form flight-recorder
// dumps and lsms-trace/1 documents use.
func (t TraceID) MarshalJSON() ([]byte, error) { return json.Marshal(t.String()) }

// MarshalJSON renders the ID as a hex string.
func (s SpanID) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON parses the hex form written by MarshalJSON.
func (t *TraceID) UnmarshalJSON(b []byte) error {
	var str string
	if err := json.Unmarshal(b, &str); err != nil {
		return err
	}
	if str == "" {
		*t = TraceID{}
		return nil
	}
	if len(str) != 32 {
		return fmt.Errorf("obs: trace ID %q is not 32 hex digits", str)
	}
	_, err := hex.Decode(t[:], []byte(str))
	return err
}

// UnmarshalJSON parses the hex form written by MarshalJSON.
func (s *SpanID) UnmarshalJSON(b []byte) error {
	var str string
	if err := json.Unmarshal(b, &str); err != nil {
		return err
	}
	if str == "" {
		*s = SpanID{}
		return nil
	}
	if len(str) != 16 {
		return fmt.Errorf("obs: span ID %q is not 16 hex digits", str)
	}
	_, err := hex.Decode(s[:], []byte(str))
	return err
}

// SpanContext identifies one span in one trace plus the sampling
// verdict — the unit that crosses process boundaries (as a traceparent
// header) and that span links point at.
type SpanContext struct {
	TraceID TraceID `json:"trace_id"`
	SpanID  SpanID  `json:"span_id"`
	Sampled bool    `json:"sampled,omitempty"`
}

// IsZero reports whether no context is attached (invalid TraceID).
func (sc SpanContext) IsZero() bool { return sc.TraceID.IsZero() }

// Traceparent renders the context as a W3C traceparent header value,
// version 00: `00-<trace-id>-<parent-id>-<trace-flags>`.
func (sc SpanContext) Traceparent() string {
	flags := "00"
	if sc.Sampled {
		flags = "01"
	}
	return "00-" + sc.TraceID.String() + "-" + sc.SpanID.String() + "-" + flags
}

// ParseTraceparent parses a W3C traceparent header value. Per the spec,
// version ff is invalid, future versions are accepted if the prefix
// parses as version 00 does, and all-zero trace or span IDs are
// rejected. Callers treat any error as "no incoming context" and start
// a fresh trace — a malformed header must never break the request.
func ParseTraceparent(h string) (SpanContext, error) {
	var sc SpanContext
	if len(h) < 55 {
		return sc, fmt.Errorf("obs: traceparent %q too short", h)
	}
	if h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return sc, fmt.Errorf("obs: traceparent %q misplaces its separators", h)
	}
	var version [1]byte
	if _, err := hex.Decode(version[:], []byte(h[0:2])); err != nil {
		return sc, fmt.Errorf("obs: traceparent version: %w", err)
	}
	if version[0] == 0xff {
		return sc, fmt.Errorf("obs: traceparent version ff is invalid")
	}
	if version[0] == 0 && len(h) != 55 {
		return sc, fmt.Errorf("obs: version-00 traceparent %q has trailing data", h)
	}
	if _, err := hex.Decode(sc.TraceID[:], []byte(h[3:35])); err != nil {
		return SpanContext{}, fmt.Errorf("obs: traceparent trace-id: %w", err)
	}
	if _, err := hex.Decode(sc.SpanID[:], []byte(h[36:52])); err != nil {
		return SpanContext{}, fmt.Errorf("obs: traceparent parent-id: %w", err)
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(h[53:55])); err != nil {
		return SpanContext{}, fmt.Errorf("obs: traceparent flags: %w", err)
	}
	if sc.TraceID.IsZero() {
		return SpanContext{}, fmt.Errorf("obs: traceparent trace-id is all zero")
	}
	if sc.SpanID.IsZero() {
		return SpanContext{}, fmt.Errorf("obs: traceparent parent-id is all zero")
	}
	sc.Sampled = flags[0]&0x01 != 0
	return sc, nil
}

// NewTraceID returns a random (valid, non-zero) trace ID.
func NewTraceID() TraceID {
	var t TraceID
	for t.IsZero() {
		if _, err := rand.Read(t[:]); err != nil {
			// crypto/rand failing is unrecoverable for the process, but the
			// tracer must not be the thing that kills it: fall back to a
			// fixed nonzero ID and let the request proceed untraced-ish.
			t[0] = 1
		}
	}
	return t
}

// NewSpanID returns a random (valid, non-zero) span ID.
func NewSpanID() SpanID {
	var s SpanID
	for s.IsZero() {
		if _, err := rand.Read(s[:]); err != nil {
			s[0] = 1
		}
	}
	return s
}

// NewSpanContext returns a fresh root context: new trace, new span.
// The caller decides Sampled (see Sample).
func NewSpanContext() SpanContext {
	return SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
}

// Sample is the deterministic head-sampling decision for locally
// rooted traces: 1-in-n by the trace ID's leading 8 bytes, so the
// same trace ID gets the same verdict on every node (a fleet samples
// coherently without coordination). n <= 0 disables sampling, n == 1
// samples everything.
func Sample(id TraceID, n int) bool {
	if n <= 0 {
		return false
	}
	if n == 1 {
		return true
	}
	return binary.BigEndian.Uint64(id[:8])%uint64(n) == 0
}

// deriveSpanID deterministically derives the i-th child span ID from
// the root span ID via a splitmix64 step — collision-free across i for
// one root, stable across re-exports of the same trace (the golden
// fixture's requirement), and never the root itself or zero.
func deriveSpanID(root SpanID, i int) SpanID {
	x := binary.BigEndian.Uint64(root[:]) + uint64(i+1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	var s SpanID
	binary.BigEndian.PutUint64(s[:], x)
	if s.IsZero() {
		s[7] = 1
	}
	return s
}
