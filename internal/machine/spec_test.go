package machine

import (
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// paperFamily returns the (name, latencies) pairs of the four paper
// variants, matching both the spec family and the hard-coded tables.
func paperFamily() map[string]Latencies {
	shortmem := CydraLatencies()
	shortmem.Load = 6
	longops := CydraLatencies()
	longops.Add, longops.Mul, longops.Div, longops.Sqrt = 2, 4, 24, 30
	pipediv := CydraLatencies()
	pipediv.PipelinedDivider = true
	return map[string]Latencies{
		PaperMachine: CydraLatencies(),
		"shortmem":   shortmem,
		"longops":    longops,
		"pipediv":    pipediv,
	}
}

// TestFamilySpecsMatchHardcoded pins the declarative paper variants
// bit-identical to the hard-coded New tables: same unit mix, same
// per-opcode kind/latency/busy, same NotPipelined marks. This is the
// differential guarantee that lets the registry serve spec-built
// machines without perturbing any paper number.
func TestFamilySpecsMatchHardcoded(t *testing.T) {
	for name, lat := range paperFamily() {
		ref := New(name, lat)
		got, ok := Lookup(name)
		if !ok {
			t.Fatalf("built-in %q not registered", name)
		}
		if got.NumKinds() != ref.NumKinds() {
			t.Fatalf("%s: NumKinds = %d, want %d", name, got.NumKinds(), ref.NumKinds())
		}
		for k := FUKind(0); int(k) < ref.NumKinds(); k++ {
			if got.Count(k) != ref.Count(k) {
				t.Errorf("%s: Count(%v) = %d, want %d", name, k, got.Count(k), ref.Count(k))
			}
			if got.KindName(k) != ref.KindName(k) {
				t.Errorf("%s: KindName(%v) = %q, want %q", name, k, got.KindName(k), ref.KindName(k))
			}
			if got.NotPipelined(k) != ref.NotPipelined(k) {
				t.Errorf("%s: NotPipelined(%v) = %v, want %v", name, k, got.NotPipelined(k), ref.NotPipelined(k))
			}
		}
		for o := Opcode(0); int(o) < NumOpcodes; o++ {
			gi, gok := got.Lookup(o)
			ri, rok := ref.Lookup(o)
			if gok != rok || gi != ri {
				t.Errorf("%s: Lookup(%v) = %+v,%v, want %+v,%v", name, o, gi, gok, ri, rok)
			}
		}
	}
}

// TestPipedivDamping checks the one subtle bit of the bit-identity
// story: the pipelined-divider ablation keeps its Divider class marked
// NotPipelined (so slack damping still applies to divide-class ops, as
// the hard-coded Kind==Divider test did) while the profiles override
// Busy down to 1.
func TestPipedivDamping(t *testing.T) {
	d, _ := Lookup("pipediv")
	if !d.NotPipelined(Divider) {
		t.Fatal("pipediv Divider lost its NotPipelined mark; slack damping would change")
	}
	info, ok := d.Lookup(FDiv)
	if !ok || info.Busy != 1 {
		t.Fatalf("pipediv fdiv = %+v,%v; want Busy 1", info, ok)
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	orig := FamilySpec(PaperMachine, CydraLatencies())
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, parsed) {
		t.Fatalf("spec changed across JSON round-trip:\n%+v\n%+v", orig, parsed)
	}
	ref := New(PaperMachine, CydraLatencies())
	got := parsed.MustBuild()
	for o := Opcode(0); int(o) < NumOpcodes; o++ {
		gi, gok := got.Lookup(o)
		ri, rok := ref.Lookup(o)
		if gok != rok || gi != ri {
			t.Errorf("round-tripped Lookup(%v) = %+v,%v, want %+v,%v", o, gi, gok, ri, rok)
		}
	}
}

func TestSpecValidateErrors(t *testing.T) {
	base := func() *Spec { return FamilySpec("m", CydraLatencies()) }
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   string
	}{
		{"empty name", func(s *Spec) { s.Name = "" }, "no name"},
		{"no units", func(s *Spec) { s.Units = nil }, "no functional units"},
		{"unnamed unit", func(s *Spec) { s.Units[0].Name = "" }, "has no name"},
		{"dup unit", func(s *Spec) { s.Units[1].Name = s.Units[0].Name }, "duplicate unit"},
		{"zero count", func(s *Spec) { s.Units[0].Count = 0 }, "count 0"},
		{"no profiles", func(s *Spec) { s.Profiles = nil }, "no execution profiles"},
		{"unknown unit", func(s *Spec) { s.Profiles[0].Unit = "Teleporter" }, "unknown unit"},
		{"zero latency", func(s *Spec) { s.Profiles[0].Latency = 0 }, "latency 0"},
		{"negative busy", func(s *Spec) { s.Profiles[0].Busy = -1 }, "negative busy"},
		{"empty ops", func(s *Spec) { s.Profiles[0].Ops = nil }, "lists no ops"},
		{"unreferenced unit", func(s *Spec) { s.Units = append(s.Units, UnitSpec{Name: "Spare", Count: 1}) }, "no execution profile"},
		{"unknown opcode", func(s *Spec) { s.Profiles[0].Ops = []string{"teleport"} }, "unknown opcode"},
		{"dup opcode", func(s *Spec) { s.Profiles[1].Ops = []string{"load"} }, "profiled twice"},
		{"unknown regfile", func(s *Spec) { s.RegFiles = []RegFileSpec{{Name: "XR"}} }, "unknown file"},
		{"dup regfile", func(s *Spec) { s.RegFiles = []RegFileSpec{{Name: "RR"}, {Name: "RR"}} }, "duplicate register file"},
	}
	for _, tc := range cases {
		s := base()
		tc.mutate(s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted a bad spec", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("base spec should validate: %v", err)
	}
}

// TestPartialSpec checks the unsupported-opcode surface: a target
// implementing a subset of the opcode space reports the rest through
// Lookup/Supports, and Info names the machine in its panic.
func TestPartialSpec(t *testing.T) {
	s := &Spec{
		Name:  "tiny",
		Units: []UnitSpec{{Name: "ALU", Count: 1}},
		Profiles: []ProfileSpec{
			{Ops: []string{"iadd", "brtop"}, Unit: "ALU", Latency: 1},
		},
	}
	d, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !d.Supports(IAdd) || d.Supports(FDiv) || d.Supports(Nop) {
		t.Fatalf("Supports wrong: iadd=%v fdiv=%v nop=%v", d.Supports(IAdd), d.Supports(FDiv), d.Supports(Nop))
	}
	if _, ok := d.Lookup(FDiv); ok {
		t.Fatal("Lookup(fdiv) succeeded on a machine without a divider")
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Info(fdiv) did not panic on unsupported op")
		}
		if !strings.Contains(fmt.Sprint(r), "tiny") {
			t.Fatalf("panic %v does not name the machine", r)
		}
	}()
	d.Info(FDiv)
}

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) == 0 || names[0] != PaperMachine {
		t.Fatalf("Names() = %v; want %q first", names, PaperMachine)
	}
	for _, want := range []string{"cydra", "shortmem", "longops", "pipediv", "cluster2", "simdwide", "cgra4"} {
		if _, ok := Lookup(want); !ok {
			t.Errorf("built-in %q not registered", want)
		}
	}
	for i := 2; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatalf("Names() tail not sorted: %v", names)
		}
	}
	ms := Machines()
	if len(ms) != len(names) {
		t.Fatalf("Machines() returned %d descs for %d names", len(ms), len(names))
	}
	for i, m := range ms {
		if m.Name != names[i] {
			t.Fatalf("Machines()[%d] = %q, want %q", i, m.Name, names[i])
		}
	}
	if _, ok := Lookup("no-such-machine"); ok {
		t.Fatal("Lookup invented a machine")
	}
}

// TestCGRAGridShape proves the dynamic sizing is real: the CGRA-like
// target has three unit classes, not the paper's six, and its divides
// monopolize a pipelined PE via an explicit busy span.
func TestCGRAGridShape(t *testing.T) {
	d, ok := Lookup("cgra4")
	if !ok {
		t.Fatal("cgra4 not registered")
	}
	if d.NumKinds() != 3 {
		t.Fatalf("cgra4 NumKinds = %d, want 3", d.NumKinds())
	}
	if d.Count(0) != 4 || d.KindName(0) != "PE" {
		t.Fatalf("cgra4 kind 0 = %s×%d, want PE×4", d.KindName(0), d.Count(0))
	}
	info := d.Info(FDiv)
	if info.Busy != 8 || info.Latency != 8 {
		t.Fatalf("cgra4 fdiv = %+v, want latency 8 busy 8", info)
	}
	if d.NotPipelined(0) {
		t.Fatal("cgra4 PE class should be pipelined")
	}
	// Count/KindName degrade gracefully out of range.
	if d.Count(FUKind(7)) != 0 {
		t.Fatal("Count out of range should be 0")
	}
}

func TestDescSpecIsPrivate(t *testing.T) {
	d, _ := Lookup(PaperMachine)
	sp := d.Spec()
	if sp == nil {
		t.Fatal("registered built-in has no spec")
	}
	before := d.Count(MemPort)
	sp.Units[MemPort].Count = 99
	d2, _ := Lookup(PaperMachine)
	if d2.Count(MemPort) != before {
		t.Fatal("mutating Spec() copy reached the registered desc")
	}
}

func TestOpcodeByName(t *testing.T) {
	for o := Opcode(1); int(o) < NumOpcodes; o++ {
		got, ok := OpcodeByName(o.String())
		if !ok || got != o {
			t.Fatalf("OpcodeByName(%q) = %v,%v", o.String(), got, ok)
		}
	}
	if _, ok := OpcodeByName("nop"); ok {
		t.Fatal("nop should not be profilable")
	}
	if _, ok := OpcodeByName("bogus"); ok {
		t.Fatal("bogus opcode resolved")
	}
}
