package machine

import "testing"

func TestCydraTable1(t *testing.T) {
	m := Cydra()
	cases := []struct {
		op      Opcode
		kind    FUKind
		latency int
		busy    int
	}{
		{Load, MemPort, 13, 1},
		{Store, MemPort, 1, 1},
		{AAdd, AddrALU, 1, 1},
		{ASub, AddrALU, 1, 1},
		{AMul, AddrALU, 1, 1},
		{IAdd, Adder, 1, 1},
		{FAdd, Adder, 1, 1},
		{FSub, Adder, 1, 1},
		{IAnd, Adder, 1, 1},
		{IMul, Multiplier, 2, 1},
		{FMul, Multiplier, 2, 1},
		{IDiv, Divider, 17, 17},
		{IMod, Divider, 17, 17},
		{FDiv, Divider, 17, 17},
		{FSqrt, Divider, 21, 21},
		{BrTop, Branch, 2, 1},
	}
	for _, c := range cases {
		in := m.Info(c.op)
		if in.Kind != c.kind || in.Latency != c.latency || in.Busy != c.busy {
			t.Errorf("%v: got %+v, want kind=%v lat=%d busy=%d", c.op, in, c.kind, c.latency, c.busy)
		}
	}
}

func TestCydraUnitCounts(t *testing.T) {
	m := Cydra()
	want := map[FUKind]int{MemPort: 2, AddrALU: 2, Adder: 1, Multiplier: 1, Divider: 1, Branch: 1}
	for k, n := range want {
		if m.Count(k) != n {
			t.Errorf("Count(%v) = %d, want %d", k, m.Count(k), n)
		}
	}
}

func TestDividerNotPipelined(t *testing.T) {
	m := Cydra()
	if got := m.Info(FDiv); got.Busy != got.Latency {
		t.Errorf("divider should reserve its full latency; got busy=%d lat=%d", got.Busy, got.Latency)
	}
	p := PipelinedDivide()
	if got := p.Info(FDiv); got.Busy != 1 {
		t.Errorf("pipelined-divider variant should reserve 1 cycle; got %d", got.Busy)
	}
	if p.Info(FDiv).Latency != 17 {
		t.Errorf("pipelining must not change latency")
	}
}

func TestInfoPanicsOnNop(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Info(Nop) should panic")
		}
	}()
	Cydra().Info(Nop)
}

func TestVariantsDistinct(t *testing.T) {
	vs := Variants()
	if len(vs) < 3 {
		t.Fatalf("want several machine variants, got %d", len(vs))
	}
	names := map[string]bool{}
	for _, v := range vs {
		if names[v.Name] {
			t.Errorf("duplicate variant name %q", v.Name)
		}
		names[v.Name] = true
	}
	if Cydra().Info(Load).Latency == ShortMemory().Info(Load).Latency {
		t.Error("ShortMemory should change the load latency")
	}
}

func TestOpcodeStrings(t *testing.T) {
	for o := Opcode(1); o < Opcode(NumOpcodes); o++ {
		s := o.String()
		if s == "" || s[0] == 'O' && len(s) > 6 && s[:6] == "Opcode" {
			t.Errorf("opcode %d has no mnemonic", int(o))
		}
	}
	if MemPort.String() != "MemPort" || Divider.String() != "Divider" {
		t.Error("FUKind names wrong")
	}
}

func TestIsCompareAndIsMem(t *testing.T) {
	if !FCmpLT.IsCompare() || !PNot.IsCompare() || IAdd.IsCompare() {
		t.Error("IsCompare misclassifies")
	}
	if !Load.IsMem() || !Store.IsMem() || FAdd.IsMem() {
		t.Error("IsMem misclassifies")
	}
}
