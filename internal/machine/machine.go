// Package machine describes the target processor: a hypothetical VLIW
// similar to Cydrome's Cydra 5, as specified in Section 2 and Table 1 of
// Huff, "Lifetime-Sensitive Modulo Scheduling" (PLDI 1993).
//
// The machine has six functional-unit classes. All units are fully
// pipelined except the divider, which is not pipelined at all: a divide,
// modulo, or square root reserves the divider for its full latency.
// Every operation carries a 1-bit predicate input; when the predicate is
// false the hardware treats the operation as a no-op (Section 2.2).
//
// The processor has three register files (Section 2.3): the RR file holds
// rotating addresses, ints, and floats (loop variants); the GPR file holds
// loop invariants; and the ICR file holds rotating 1-bit predicates used
// for iteration control and if-converted code. Register pressure studies
// in this repository, like the paper's, treat each file as unbounded.
package machine

import "fmt"

// FUKind identifies a functional-unit class.
type FUKind int

// Functional-unit classes of the target machine (Table 1).
const (
	MemPort    FUKind = iota // 2 units: load (13), store (1)
	AddrALU                  // 2 units: address add/sub/mult (1)
	Adder                    // 1 unit: int add/sub/logical, float add/sub (1)
	Multiplier               // 1 unit: int/float multiply (2)
	Divider                  // 1 unit, NOT pipelined: div/mod (17), sqrt (21)
	Branch                   // 1 unit: brtop (2)
	numFUKinds
)

// NumFUKinds is the number of functional-unit classes.
const NumFUKinds = int(numFUKinds)

var fuKindNames = [...]string{
	MemPort:    "MemPort",
	AddrALU:    "AddrALU",
	Adder:      "Adder",
	Multiplier: "Multiplier",
	Divider:    "Divider",
	Branch:     "Branch",
}

// String returns the conventional name of the unit class.
func (k FUKind) String() string {
	if k < 0 || int(k) >= len(fuKindNames) {
		return fmt.Sprintf("FUKind(%d)", int(k))
	}
	return fuKindNames[k]
}

// Opcode identifies an operation of the target instruction set.
type Opcode int

// The instruction set. The selection covers everything the mini-FORTRAN
// frontend and the synthetic loop generator emit. Address arithmetic
// (AAdd..AMul) executes on the Address ALUs; integer and floating add,
// subtract, logical and compare operations execute on the Adder;
// multiplies on the Multiplier; divide/modulo/sqrt on the non-pipelined
// Divider; loads and stores on the Memory Ports; and BrTop on the Branch
// unit.
const (
	Nop Opcode = iota

	// Memory port.
	Load  // Args: [addr] -> Result (latency 13: bypasses L1, hits off-chip L2)
	Store // Args: [addr, data] -> no result

	// Address ALU.
	AAdd // Args: [a, b] -> a+b (addresses/induction arithmetic)
	ASub // Args: [a, b] -> a-b
	AMul // Args: [a, b] -> a*b

	// Adder: integer.
	IAdd
	ISub
	IAnd
	IOr
	IXor
	ICmpEQ // -> ICR predicate
	ICmpNE
	ICmpLT
	ICmpLE
	ICmpGT
	ICmpGE

	// Adder: floating point.
	FAdd
	FSub
	FNeg
	FAbs
	FMax
	FMin
	FCmpEQ // -> ICR predicate
	FCmpNE
	FCmpLT
	FCmpLE
	FCmpGT
	FCmpGE

	// Adder: predicate manipulation and copies.
	PNot  // Args: [p] -> !p (complement predicate for if-conversion)
	PAnd  // Args: [p, q] -> p&&q (nested if-conversion)
	POr   // Args: [p, q] -> p||q (compound conditions)
	Copy  // Args: [a] -> a (predicated copy; merges after if-conversion)
	FCopy // Args: [a] -> a (float copy)
	IToF  // Args: [i] -> float(i) (REAL(i) intrinsic)
	FToI  // Args: [f] -> int(f), truncating (INT(x) intrinsic)

	// Multiplier.
	IMul
	FMul

	// Divider (not pipelined).
	IDiv
	IMod
	FDiv
	FSqrt

	// Branch unit.
	BrTop // loop-closing branch: decrements ICP, writes stage predicate

	numOpcodes
)

// NumOpcodes is the number of opcodes, for table sizing.
const NumOpcodes = int(numOpcodes)

var opcodeNames = [...]string{
	Nop: "nop", Load: "load", Store: "store",
	AAdd: "aadd", ASub: "asub", AMul: "amul",
	IAdd: "iadd", ISub: "isub", IAnd: "iand", IOr: "ior", IXor: "ixor",
	ICmpEQ: "icmpeq", ICmpNE: "icmpne", ICmpLT: "icmplt",
	ICmpLE: "icmple", ICmpGT: "icmpgt", ICmpGE: "icmpge",
	FAdd: "fadd", FSub: "fsub", FNeg: "fneg", FAbs: "fabs",
	FMax: "fmax", FMin: "fmin",
	FCmpEQ: "fcmpeq", FCmpNE: "fcmpne", FCmpLT: "fcmplt",
	FCmpLE: "fcmple", FCmpGT: "fcmpgt", FCmpGE: "fcmpge",
	PNot: "pnot", PAnd: "pand", POr: "por", Copy: "copy", FCopy: "fcopy",
	IToF: "itof", FToI: "ftoi",
	IMul: "imul", FMul: "fmul",
	IDiv: "idiv", IMod: "imod", FDiv: "fdiv", FSqrt: "fsqrt",
	BrTop: "brtop",
}

// String returns the assembler mnemonic of the opcode.
func (o Opcode) String() string {
	if o < 0 || int(o) >= len(opcodeNames) || opcodeNames[o] == "" {
		return fmt.Sprintf("Opcode(%d)", int(o))
	}
	return opcodeNames[o]
}

// IsCompare reports whether the opcode produces a 1-bit predicate.
func (o Opcode) IsCompare() bool {
	switch o {
	case ICmpEQ, ICmpNE, ICmpLT, ICmpLE, ICmpGT, ICmpGE,
		FCmpEQ, FCmpNE, FCmpLT, FCmpLE, FCmpGT, FCmpGE, PNot, PAnd, POr:
		return true
	}
	return false
}

// IsMem reports whether the opcode accesses memory.
func (o Opcode) IsMem() bool { return o == Load || o == Store }

// OpcodeByName resolves an assembler mnemonic to its opcode.
func OpcodeByName(s string) (Opcode, bool) {
	o, ok := opcodeByName[s]
	return o, ok
}

// opcodeByName maps assembler mnemonics back to opcodes.
var opcodeByName = func() map[string]Opcode {
	m := make(map[string]Opcode, NumOpcodes)
	for o := Opcode(1); int(o) < NumOpcodes; o++ {
		m[o.String()] = o
	}
	return m
}()

// OpInfo describes how an opcode uses the machine.
type OpInfo struct {
	Kind    FUKind // functional-unit class that executes the op
	Latency int    // cycles from issue until the result may be read
	Busy    int    // cycles the unit is reserved from issue (== Latency for the divider)
}

// Desc is a complete machine description: the functional-unit classes
// (with instance counts and pipelining), and how each opcode uses them.
// A Desc is immutable after construction and sized by its description —
// a target may declare any number of unit classes, not just the paper's
// six — so all packages share pointers to it and size their scratch by
// NumKinds. Descs come from two builders: Spec.Build compiles a
// declarative document (the normal path; see spec.go), and New bakes
// the paper's Table 1 directly (the hard-coded reference the
// differential tests pin spec-built variants against).
type Desc struct {
	Name  string
	units []UnitSpec // per-class metadata, indexed by FUKind
	info  []OpInfo   // indexed by Opcode; Busy == 0 means unimplemented
	spec  *Spec      // declarative source, nil for New-built descs
}

// NumKinds returns the number of functional-unit classes this machine
// declares. FUKind values 0..NumKinds()-1 index them.
func (d *Desc) NumKinds() int { return len(d.units) }

// Count returns the number of functional units of class k (0 for a
// class the machine does not declare).
func (d *Desc) Count(k FUKind) int {
	if k < 0 || int(k) >= len(d.units) {
		return 0
	}
	return d.units[k].Count
}

// KindName returns the machine's name for unit class k.
func (d *Desc) KindName(k FUKind) string {
	if k < 0 || int(k) >= len(d.units) {
		return k.String()
	}
	return d.units[k].Name
}

// NotPipelined reports whether class k's units are reserved for an
// op's full busy span and its ops treated as scarce: schedulers damp
// the slack of such ops (Section 4.3), because a non-pipelined
// reservation pattern leaves them very few issue slots.
func (d *Desc) NotPipelined(k FUKind) bool {
	if k < 0 || int(k) >= len(d.units) {
		return false
	}
	return d.units[k].NotPipelined
}

// Units returns a copy of the per-class metadata in FUKind order.
func (d *Desc) Units() []UnitSpec { return append([]UnitSpec(nil), d.units...) }

// Spec returns a copy of the declarative description this desc was
// built from, or nil for a hard-coded (New-built) desc. The copy keeps
// the published desc immutable no matter what the caller does with it.
func (d *Desc) Spec() *Spec { return d.spec.Clone() }

// Lookup returns the execution profile of opcode o, reporting false
// for an opcode this machine does not implement. It is the
// non-panicking boundary check: wire decoding and loop validation call
// it so a request whose ops the target cannot execute fails cleanly
// instead of panicking mid-schedule.
func (d *Desc) Lookup(o Opcode) (OpInfo, bool) {
	if o <= Nop || int(o) >= len(d.info) {
		return OpInfo{}, false
	}
	in := d.info[o]
	if in.Busy == 0 {
		return OpInfo{}, false
	}
	return in, true
}

// Supports reports whether the machine implements opcode o.
func (d *Desc) Supports(o Opcode) bool {
	_, ok := d.Lookup(o)
	return ok
}

// Info returns the execution profile of opcode o.
// It panics on an opcode the machine does not implement: loops are
// validated against their machine before scheduling (ir.Loop.Finalize,
// the wire decode boundary), so an unsupported op reaching a scheduler
// indicates a compiler bug.
func (d *Desc) Info(o Opcode) OpInfo {
	in, ok := d.Lookup(o)
	if !ok {
		panic(fmt.Sprintf("machine: %s has no execution profile for %v", d.Name, o))
	}
	return in
}

// Latency is shorthand for Info(o).Latency.
func (d *Desc) Latency(o Opcode) int { return d.Info(o).Latency }

// UnsupportedOpError reports an operation a machine cannot execute —
// the typed verdict the wire decode boundary and ir.Loop.Finalize
// return so servers can map "this target cannot run these ops" to a
// client error (422) rather than an internal failure.
type UnsupportedOpError struct {
	Machine string
	Op      Opcode
}

func (e *UnsupportedOpError) Error() string {
	return fmt.Sprintf("machine: %s does not implement %v", e.Machine, e.Op)
}

// Latencies describes the adjustable latencies of a machine variant.
// Section 8 of the paper reports that experiments with different
// functional-unit latencies gave very similar results; the benchmark
// harness reproduces that robustness claim with these knobs.
type Latencies struct {
	Load, Store      int
	Addr             int
	Add              int // int/float add, sub, logical, compare, copy
	Mul              int
	Div              int // divider reservation == latency (not pipelined)
	Sqrt             int
	BrTop            int
	PipelinedDivider bool // if true, divider reserves 1 cycle (ablation)
}

// CydraLatencies returns the latency set of Table 1.
func CydraLatencies() Latencies {
	return Latencies{Load: 13, Store: 1, Addr: 1, Add: 1, Mul: 2, Div: 17, Sqrt: 21, BrTop: 2}
}

// cydraUnits returns the paper's unit mix (Table 1) as per-class
// metadata: the divider is the one non-pipelined, scarce class.
func cydraUnits() []UnitSpec {
	return []UnitSpec{
		MemPort:    {Name: "MemPort", Count: 2},
		AddrALU:    {Name: "AddrALU", Count: 2},
		Adder:      {Name: "Adder", Count: 1},
		Multiplier: {Name: "Multiplier", Count: 1},
		Divider:    {Name: "Divider", Count: 1, NotPipelined: true},
		Branch:     {Name: "Branch", Count: 1},
	}
}

// New builds a machine description with the paper's unit mix (Table 1)
// and the given latencies, directly — without going through a Spec.
// It is the hard-coded reference implementation: the differential
// tests pin the spec-built paper variants bit-identically against it.
func New(name string, lat Latencies) *Desc {
	d := &Desc{Name: name, units: cydraUnits(), info: make([]OpInfo, NumOpcodes)}
	set := func(o Opcode, k FUKind, latency, busy int) {
		if latency < 1 || busy < 1 {
			panic(fmt.Sprintf("machine: bad latency for %v", o))
		}
		d.info[o] = OpInfo{Kind: k, Latency: latency, Busy: busy}
	}
	set(Load, MemPort, lat.Load, 1)
	set(Store, MemPort, lat.Store, 1)
	for _, o := range []Opcode{AAdd, ASub, AMul} {
		set(o, AddrALU, lat.Addr, 1)
	}
	adder := []Opcode{
		IAdd, ISub, IAnd, IOr, IXor,
		ICmpEQ, ICmpNE, ICmpLT, ICmpLE, ICmpGT, ICmpGE,
		FAdd, FSub, FNeg, FAbs, FMax, FMin,
		FCmpEQ, FCmpNE, FCmpLT, FCmpLE, FCmpGT, FCmpGE,
		PNot, PAnd, POr, Copy, FCopy, IToF, FToI,
	}
	for _, o := range adder {
		set(o, Adder, lat.Add, 1)
	}
	set(IMul, Multiplier, lat.Mul, 1)
	set(FMul, Multiplier, lat.Mul, 1)
	divBusy := func(latency int) int {
		if lat.PipelinedDivider {
			return 1
		}
		return latency
	}
	set(IDiv, Divider, lat.Div, divBusy(lat.Div))
	set(IMod, Divider, lat.Div, divBusy(lat.Div))
	set(FDiv, Divider, lat.Div, divBusy(lat.Div))
	set(FSqrt, Divider, lat.Sqrt, divBusy(lat.Sqrt))
	set(BrTop, Branch, lat.BrTop, 1)
	return d
}

// Cydra returns the paper's target machine: the unit mix and latencies
// of Table 1 with a non-pipelined divider. Since the declarative
// refactor it is the registered, spec-built instance (bit-identical to
// New("cydra", CydraLatencies()); the differential test pins this).
func Cydra() *Desc { return mustLookup(PaperMachine) }

// ShortMemory returns a variant with a 6-cycle load (first-level-cache
// hit), used by the latency-robustness experiment (Section 8).
func ShortMemory() *Desc { return mustLookup("shortmem") }

// LongOps returns a variant with uniformly longer arithmetic latencies,
// used by the latency-robustness experiment (Section 8).
func LongOps() *Desc { return mustLookup("longops") }

// PipelinedDivide returns a variant whose divider is fully pipelined, an
// ablation showing how the complex non-pipelined reservation pattern
// stresses the scheduler.
func PipelinedDivide() *Desc { return mustLookup("pipediv") }

// Variants returns the machine descriptions exercised by the
// latency-robustness experiment (Section 8), the paper's machine
// first. The wider registered target family — including the clustered
// VLIW, wide-SIMD, and CGRA-grid profiles — is listed by Names and
// Machines.
func Variants() []*Desc {
	return []*Desc{Cydra(), ShortMemory(), LongOps(), PipelinedDivide()}
}
