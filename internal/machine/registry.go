package machine

import (
	"sort"
	"sync"
)

// PaperMachine is the name of the paper's target (Table 1); Names and
// Machines list it first.
const PaperMachine = "cydra"

// The machine registry mirrors the scheduler registry in core: targets
// register under their name, the wire layer resolves request machine
// names through Lookup, and GET /v1/machines serves Names/Machines.
// The built-in target family self-registers at init (targets.go);
// external packages and daemon flags (lsmsd -machines) can add more.
var registry = struct {
	sync.RWMutex
	m map[string]*Desc
}{m: map[string]*Desc{}}

// Register makes a machine available under its name, replacing any
// previous registration. It panics on a nil desc or empty name.
func Register(d *Desc) {
	if d == nil {
		panic("machine: Register with nil desc")
	}
	if d.Name == "" {
		panic("machine: Register with empty machine name")
	}
	registry.Lock()
	defer registry.Unlock()
	registry.m[d.Name] = d
}

// Lookup returns the machine registered under name.
func Lookup(name string) (*Desc, bool) {
	registry.RLock()
	defer registry.RUnlock()
	d, ok := registry.m[name]
	return d, ok
}

// mustLookup resolves a built-in target; absence is a programming bug.
func mustLookup(name string) *Desc {
	d, ok := Lookup(name)
	if !ok {
		panic("machine: built-in target " + name + " not registered")
	}
	return d
}

// Names lists every registered machine name: the paper's machine
// first, the rest in sorted order (mirroring core.Schedulers).
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	names := make([]string, 0, len(registry.m))
	for n := range registry.m {
		if n != PaperMachine {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	if _, ok := registry.m[PaperMachine]; ok {
		names = append([]string{PaperMachine}, names...)
	}
	return names
}

// Machines returns every registered description in Names order.
func Machines() []*Desc {
	names := Names()
	registry.RLock()
	defer registry.RUnlock()
	out := make([]*Desc, 0, len(names))
	for _, n := range names {
		out = append(out, registry.m[n])
	}
	return out
}
