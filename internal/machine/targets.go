// The built-in target family, expressed as data. The four paper
// variants (Table 1 plus the Section 8 latency ablations) are
// re-expressed as Specs — the differential test in spec_test.go pins
// them bit-identical to the hard-coded New tables — and three targets
// beyond the paper widen scenario coverage: a clustered VLIW
// (resource-rich), a wide-SIMD pipeline (deep latencies, lifetime
// pressure), and a CGRA-grid-like profile (scarce, near-homogeneous
// units where placement pressure dominates). All register themselves
// at init; lsmsd serves compiles for any of them by name.
package machine

// adderOps lists every opcode the paper's general-purpose Adder
// executes: integer and float add/sub/logical/compare, predicate
// manipulation, copies, and conversions.
var adderOps = []string{
	"iadd", "isub", "iand", "ior", "ixor",
	"icmpeq", "icmpne", "icmplt", "icmple", "icmpgt", "icmpge",
	"fadd", "fsub", "fneg", "fabs", "fmax", "fmin",
	"fcmpeq", "fcmpne", "fcmplt", "fcmple", "fcmpgt", "fcmpge",
	"pnot", "pand", "por", "copy", "fcopy", "itof", "ftoi",
}

// addrOps and mulOps are the Address-ALU and Multiplier opcode groups.
var (
	addrOps = []string{"aadd", "asub", "amul"}
	mulOps  = []string{"imul", "fmul"}
	divOps  = []string{"idiv", "imod", "fdiv"}
)

// FamilySpec expresses one paper-family variant (the Table 1 unit mix
// at the given latencies) as a declarative spec. The Divider class
// stays marked NotPipelined even for the pipelined-divider ablation —
// its profiles then override Busy to 1 — so spec-built variants keep
// the scarce-op slack damping the hard-coded tables implied and
// schedule bit-identically to them.
func FamilySpec(name string, lat Latencies) *Spec {
	divBusy := 0 // default: full latency, because the Divider is NotPipelined
	if lat.PipelinedDivider {
		divBusy = 1
	}
	return &Spec{
		Name: name,
		Units: []UnitSpec{
			{Name: "MemPort", Count: 2},
			{Name: "AddrALU", Count: 2},
			{Name: "Adder", Count: 1},
			{Name: "Multiplier", Count: 1},
			{Name: "Divider", Count: 1, NotPipelined: true},
			{Name: "Branch", Count: 1},
		},
		Profiles: []ProfileSpec{
			{Ops: []string{"load"}, Unit: "MemPort", Latency: lat.Load},
			{Ops: []string{"store"}, Unit: "MemPort", Latency: lat.Store},
			{Ops: addrOps, Unit: "AddrALU", Latency: lat.Addr},
			{Ops: adderOps, Unit: "Adder", Latency: lat.Add},
			{Ops: mulOps, Unit: "Multiplier", Latency: lat.Mul},
			{Ops: divOps, Unit: "Divider", Latency: lat.Div, Busy: divBusy},
			{Ops: []string{"fsqrt"}, Unit: "Divider", Latency: lat.Sqrt, Busy: divBusy},
			{Ops: []string{"brtop"}, Unit: "Branch", Latency: lat.BrTop},
		},
		RegFiles: DefaultRegFiles(),
	}
}

// ClusteredVLIWSpec is a two-cluster VLIW: the Cydra mix with the
// scalar Adder and Multiplier doubled (one per cluster). Resource-rich
// targets schedule at MII more often, shifting the pressure question
// from "can it be placed" to "how long do values live".
func ClusteredVLIWSpec() *Spec {
	lat := CydraLatencies()
	s := FamilySpec("cluster2", lat)
	s.Units[Adder].Count = 2
	s.Units[Multiplier].Count = 2
	return s
}

// WideSIMDSpec is a wide-SIMD arithmetic pipeline in the style of the
// comparative-study targets: deeply pipelined vector units (4-cycle
// adds, 6-cycle multiplies, a fully pipelined 24-cycle divider) behind
// a 20-cycle streaming memory. Long latencies stretch lifetimes, so
// MaxLive — not placement — dominates; the lifetime-sensitive policy's
// home turf.
func WideSIMDSpec() *Spec {
	return &Spec{
		Name: "simdwide",
		Units: []UnitSpec{
			{Name: "MemPort", Count: 2},
			{Name: "AddrALU", Count: 2},
			{Name: "VecALU", Count: 2},
			{Name: "VecMul", Count: 1},
			{Name: "VecDiv", Count: 1}, // fully pipelined: busy 1
			{Name: "Branch", Count: 1},
		},
		Profiles: []ProfileSpec{
			{Ops: []string{"load"}, Unit: "MemPort", Latency: 20},
			{Ops: []string{"store"}, Unit: "MemPort", Latency: 2},
			{Ops: addrOps, Unit: "AddrALU", Latency: 1},
			{Ops: adderOps, Unit: "VecALU", Latency: 4},
			{Ops: mulOps, Unit: "VecMul", Latency: 6},
			{Ops: divOps, Unit: "VecDiv", Latency: 24},
			{Ops: []string{"fsqrt"}, Unit: "VecDiv", Latency: 32},
			{Ops: []string{"brtop"}, Unit: "Branch", Latency: 2},
		},
		RegFiles: DefaultRegFiles(),
	}
}

// CGRAGridSpec is a CGRA-grid-like profile (SAT-MapIt's domain): four
// near-homogeneous processing elements execute all computation —
// including multi-cycle divides that monopolize a PE for their full
// span — behind a single memory port. Unit scarcity and placement
// pressure dominate; it also exercises a unit-class count different
// from the paper's six (three classes), proving the desc-sized
// scratch paths carry no Table 1 assumptions.
func CGRAGridSpec() *Spec {
	peOps := append(append([]string{}, addrOps...), adderOps...)
	return &Spec{
		Name: "cgra4",
		Units: []UnitSpec{
			{Name: "PE", Count: 4},
			{Name: "MemPort", Count: 1},
			{Name: "Branch", Count: 1},
		},
		Profiles: []ProfileSpec{
			{Ops: []string{"load"}, Unit: "MemPort", Latency: 2},
			{Ops: []string{"store"}, Unit: "MemPort", Latency: 1},
			{Ops: peOps, Unit: "PE", Latency: 1},
			{Ops: mulOps, Unit: "PE", Latency: 2},
			// Divides occupy their PE for the full span even though the
			// class is otherwise pipelined — the grid has no dedicated
			// divider to hide them on.
			{Ops: divOps, Unit: "PE", Latency: 8, Busy: 8},
			{Ops: []string{"fsqrt"}, Unit: "PE", Latency: 12, Busy: 12},
			{Ops: []string{"brtop"}, Unit: "Branch", Latency: 1},
		},
		RegFiles: DefaultRegFiles(),
	}
}

// BuiltinSpecs returns the declarative documents of the built-in
// target family, paper variants first.
func BuiltinSpecs() []*Spec {
	shortmem := CydraLatencies()
	shortmem.Load = 6
	longops := CydraLatencies()
	longops.Add, longops.Mul, longops.Div, longops.Sqrt = 2, 4, 24, 30
	pipediv := CydraLatencies()
	pipediv.PipelinedDivider = true
	return []*Spec{
		FamilySpec(PaperMachine, CydraLatencies()),
		FamilySpec("shortmem", shortmem),
		FamilySpec("longops", longops),
		FamilySpec("pipediv", pipediv),
		ClusteredVLIWSpec(),
		WideSIMDSpec(),
		CGRAGridSpec(),
	}
}

func init() {
	for _, s := range BuiltinSpecs() {
		Register(s.MustBuild())
	}
}
