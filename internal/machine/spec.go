// Declarative machine descriptions. A Spec is the data form of a
// target: functional-unit classes with instance counts and pipelining,
// per-opcode execution profiles (latency and reservation span), and
// register-file metadata. Spec documents are plain JSON — loadable
// from a file (lsms -machine file.json), embeddable in an lsms-wire/2
// request, and compiled by Build into the immutable Desc every
// scheduler consumes. Validate runs at construction, so a scheduler
// never sees a partial or inconsistent table.
package machine

import (
	"encoding/json"
	"fmt"
	"os"
)

// UnitSpec declares one functional-unit class.
type UnitSpec struct {
	// Name identifies the class ("MemPort", "PE", ...); profiles refer
	// to it. Names are unique within a spec.
	Name string `json:"name"`
	// Count is the number of identical instances; ops are pre-assigned
	// round-robin over them (Section 2 / ir.Loop.Finalize).
	Count int `json:"count"`
	// NotPipelined marks the class scarce: its ops reserve an instance
	// for their full latency by default (ProfileSpec.Busy may
	// override), and schedulers damp their slack (Section 4.3) because
	// the reservation pattern leaves them very few issue slots.
	NotPipelined bool `json:"not_pipelined,omitempty"`
}

// ProfileSpec declares the execution profile of a group of opcodes
// that share a unit class, latency, and reservation span.
type ProfileSpec struct {
	// Ops lists assembler mnemonics (Opcode.String values).
	Ops []string `json:"ops"`
	// Unit names the UnitSpec these ops execute on.
	Unit string `json:"unit"`
	// Latency is cycles from issue until the result may be read (≥ 1).
	Latency int `json:"latency"`
	// Busy is cycles the unit is reserved from issue. Zero means the
	// default: Latency on a NotPipelined unit, 1 otherwise.
	Busy int `json:"busy,omitempty"`
}

// RegFileSpec declares one register file. The scheduler treats every
// file as unbounded (the paper's setting — pressure is measured, not
// enforced), so this is descriptive metadata served by /v1/machines.
type RegFileSpec struct {
	Name     string `json:"name"`               // "RR" | "GPR" | "ICR"
	Rotating bool   `json:"rotating,omitempty"` // rotating addressing
	Size     int    `json:"size,omitempty"`     // 0 = unbounded
}

// DefaultRegFiles returns the paper's three register files (Section
// 2.3): rotating RR and ICR, static GPR, all unbounded.
func DefaultRegFiles() []RegFileSpec {
	return []RegFileSpec{
		{Name: "RR", Rotating: true},
		{Name: "GPR"},
		{Name: "ICR", Rotating: true},
	}
}

// Spec is a complete declarative machine description.
type Spec struct {
	Name     string        `json:"name"`
	Units    []UnitSpec    `json:"units"`
	Profiles []ProfileSpec `json:"profiles"`
	// RegFiles defaults to DefaultRegFiles when empty.
	RegFiles []RegFileSpec `json:"reg_files,omitempty"`
}

// knownRegFiles are the register-file names the IR can address.
var knownRegFiles = map[string]bool{"RR": true, "GPR": true, "ICR": true}

// Validate checks the spec for completeness and consistency: a nil
// error guarantees Build succeeds and produces a table a scheduler can
// trust without further checks.
func (s *Spec) Validate() error {
	if s == nil {
		return fmt.Errorf("machine: nil spec")
	}
	if s.Name == "" {
		return fmt.Errorf("machine: spec has no name")
	}
	if len(s.Units) == 0 {
		return fmt.Errorf("machine: spec %q declares no functional units", s.Name)
	}
	unitIdx := make(map[string]int, len(s.Units))
	for i, u := range s.Units {
		if u.Name == "" {
			return fmt.Errorf("machine: spec %q: unit %d has no name", s.Name, i)
		}
		if _, dup := unitIdx[u.Name]; dup {
			return fmt.Errorf("machine: spec %q: duplicate unit %q", s.Name, u.Name)
		}
		if u.Count < 1 {
			return fmt.Errorf("machine: spec %q: unit %q has count %d (want ≥ 1)", s.Name, u.Name, u.Count)
		}
		unitIdx[u.Name] = i
	}
	if len(s.Profiles) == 0 {
		return fmt.Errorf("machine: spec %q declares no execution profiles", s.Name)
	}
	seen := make(map[Opcode]string, NumOpcodes)
	usedUnit := make(map[string]bool, len(s.Units))
	for i, p := range s.Profiles {
		if _, ok := unitIdx[p.Unit]; !ok {
			return fmt.Errorf("machine: spec %q: profile %d names unknown unit %q", s.Name, i, p.Unit)
		}
		usedUnit[p.Unit] = true
		if p.Latency < 1 {
			return fmt.Errorf("machine: spec %q: profile %d (unit %s) has latency %d (want ≥ 1)", s.Name, i, p.Unit, p.Latency)
		}
		if p.Busy < 0 {
			return fmt.Errorf("machine: spec %q: profile %d (unit %s) has negative busy %d", s.Name, i, p.Unit, p.Busy)
		}
		if len(p.Ops) == 0 {
			return fmt.Errorf("machine: spec %q: profile %d (unit %s) lists no ops", s.Name, i, p.Unit)
		}
		for _, m := range p.Ops {
			o, ok := OpcodeByName(m)
			if !ok {
				return fmt.Errorf("machine: spec %q: profile %d: unknown opcode %q", s.Name, i, m)
			}
			if prev, dup := seen[o]; dup {
				return fmt.Errorf("machine: spec %q: opcode %q profiled twice (units %s and %s)", s.Name, m, prev, p.Unit)
			}
			seen[o] = p.Unit
		}
	}
	// A declared-but-unmapped unit is dead weight at best and a typo'd
	// profile at worst; either way the document does not mean what it
	// says, so reject it.
	for _, u := range s.Units {
		if !usedUnit[u.Name] {
			return fmt.Errorf("machine: spec %q: unit %q has no execution profile", s.Name, u.Name)
		}
	}
	for i, rf := range s.RegFiles {
		if !knownRegFiles[rf.Name] {
			return fmt.Errorf("machine: spec %q: reg_files[%d] names unknown file %q (want RR, GPR, or ICR)", s.Name, i, rf.Name)
		}
		if rf.Size < 0 {
			return fmt.Errorf("machine: spec %q: register file %q has negative size", s.Name, rf.Name)
		}
		for j := 0; j < i; j++ {
			if s.RegFiles[j].Name == rf.Name {
				return fmt.Errorf("machine: spec %q: duplicate register file %q", s.Name, rf.Name)
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the spec.
func (s *Spec) Clone() *Spec {
	if s == nil {
		return nil
	}
	c := &Spec{Name: s.Name}
	c.Units = append([]UnitSpec(nil), s.Units...)
	c.Profiles = make([]ProfileSpec, len(s.Profiles))
	for i, p := range s.Profiles {
		c.Profiles[i] = p
		c.Profiles[i].Ops = append([]string(nil), p.Ops...)
	}
	c.RegFiles = append([]RegFileSpec(nil), s.RegFiles...)
	return c
}

// Build validates the spec and compiles it into an immutable Desc.
// Unit classes get FUKind indices in declaration order; opcodes absent
// from every profile stay unimplemented (Desc.Lookup reports false).
// The desc keeps a private copy of the spec, so later mutation of the
// argument cannot reach a published machine.
func (s *Spec) Build() (*Desc, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	c := s.Clone()
	if len(c.RegFiles) == 0 {
		c.RegFiles = DefaultRegFiles()
	}
	d := &Desc{
		Name:  c.Name,
		units: append([]UnitSpec(nil), c.Units...),
		info:  make([]OpInfo, NumOpcodes),
		spec:  c,
	}
	unitIdx := make(map[string]int, len(c.Units))
	for i, u := range c.Units {
		unitIdx[u.Name] = i
	}
	for _, p := range c.Profiles {
		k := unitIdx[p.Unit]
		busy := p.Busy
		if busy == 0 {
			if c.Units[k].NotPipelined {
				busy = p.Latency
			} else {
				busy = 1
			}
		}
		for _, m := range p.Ops {
			o, _ := OpcodeByName(m)
			d.info[o] = OpInfo{Kind: FUKind(k), Latency: p.Latency, Busy: busy}
		}
	}
	return d, nil
}

// MustBuild is Build for specs that are program constants.
func (s *Spec) MustBuild() *Desc {
	d, err := s.Build()
	if err != nil {
		panic(err)
	}
	return d
}

// ParseSpec decodes and validates a JSON spec document.
func ParseSpec(data []byte) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("machine: parsing spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadFile reads a JSON spec document and builds its machine.
func LoadFile(path string) (*Desc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("machine: %w", err)
	}
	s, err := ParseSpec(data)
	if err != nil {
		return nil, fmt.Errorf("machine: %s: %w", path, err)
	}
	return s.Build()
}
