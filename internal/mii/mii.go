// Package mii computes the absolute lower bounds on a loop's initiation
// interval (Section 3.1 of the paper):
//
//   - ResMII: resource contention. If one iteration needs N busy cycles
//     of a resource class and the machine supplies R units of it, then
//     II ≥ ⌈N/R⌉. The non-pipelined divider contributes its full latency
//     per divide/modulo/sqrt.
//   - RecMII: recurrence circuits. A circuit with total latency L and
//     total distance Ω forces II ≥ ⌈L/Ω⌉.
//   - MII = max(ResMII, RecMII).
//
// It also identifies critical resources and operations (Section 4.3): a
// resource is critical at a given II if one iteration uses it for at
// least 0.90·II cycles; an operation is critical if it uses a critical
// resource.
package mii

import (
	"context"

	"repro/internal/circuits"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/obs"
)

// Bounds holds a loop's lower bounds on II.
type Bounds struct {
	ResMII int
	RecMII int
	MII    int
}

// Compute returns the loop's lower bounds on II.
func Compute(l *ir.Loop) (Bounds, error) {
	return ComputeContext(context.Background(), l)
}

// ComputeContext is Compute under a context: when the context carries an
// obs.Trace, the bound computation records an "mii" span with the three
// bounds as attributes (circuit enumeration dominates its duration).
func ComputeContext(ctx context.Context, l *ir.Loop) (Bounds, error) {
	sp := obs.FromContext(ctx).Start("mii")
	res := ResMII(l)
	rec, err := circuits.RecMII(l)
	if err != nil {
		sp.End(obs.OutcomeError)
		return Bounds{}, err
	}
	m := res
	if rec > m {
		m = rec
	}
	if m < 1 {
		m = 1
	}
	sp.Int("resmii", int64(res)).Int("recmii", int64(rec)).Int("mii", int64(m)).End(obs.OutcomeOK)
	return Bounds{ResMII: res, RecMII: rec, MII: m}, nil
}

// ResMII returns the resource-constrained lower bound on II. It runs
// once per compile, so the per-kind accumulator stays on the stack for
// any machine up to 16 unit classes (all built-ins have ≤ 6).
func ResMII(l *ir.Loop) int {
	nk := l.Mach.NumKinds()
	var buf [16]int
	var busy []int
	if nk <= len(buf) {
		busy = buf[:nk]
	} else {
		busy = make([]int, nk)
	}
	for _, op := range l.Ops {
		info := l.Mach.Info(op.Opcode)
		busy[info.Kind] += info.Busy
	}
	res := 1
	for k := 0; k < nk; k++ {
		cnt := l.Mach.Count(machine.FUKind(k))
		if cnt == 0 || busy[k] == 0 {
			continue
		}
		if r := (busy[k] + cnt - 1) / cnt; r > res {
			res = r
		}
	}
	return res
}

// HasResourceContention reports whether the loop competes for any
// resource (ResMII > 1). Section 4.2: a loop without contention can
// always be scheduled to meet its critical path, so the scheduler grants
// no extra slack and does not damp critical-op priorities.
func HasResourceContention(l *ir.Loop) bool { return ResMII(l) > 1 }

// CriticalOps reports, for each op, whether it uses a critical resource
// at the given II. Ops were pre-assigned to functional-unit instances,
// so criticality is judged per instance: instance busy ≥ 0.90·II.
// Following Section 4.3 this is only meaningful when the loop has
// resource contention; callers gate on HasResourceContention.
func CriticalOps(l *ir.Loop, ii int) []bool {
	type slot struct {
		kind machine.FUKind
		fu   int
	}
	busy := map[slot]int{}
	for _, op := range l.Ops {
		info := l.Mach.Info(op.Opcode)
		busy[slot{info.Kind, op.FU}] += info.Busy
	}
	out := make([]bool, len(l.Ops))
	for i, op := range l.Ops {
		info := l.Mach.Info(op.Opcode)
		// 0.90·II without floating point: 10·busy ≥ 9·II.
		out[i] = 10*busy[slot{info.Kind, op.FU}] >= 9*ii
	}
	return out
}

// UsesDivider reports whether the op runs on a scarce (non-pipelined)
// unit class; Section 4.3 halves such ops' slack (again) because the
// non-pipelined reservation pattern leaves them very few issue slots.
// On the paper machines the only such class is the Divider — including
// the pipelined-divider ablation, whose class keeps the mark — so this
// generalization is bit-identical on the paper family.
func UsesDivider(l *ir.Loop, op *ir.Op) bool {
	return l.Mach.NotPipelined(l.Mach.Info(op.Opcode).Kind)
}
