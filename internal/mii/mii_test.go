package mii

import (
	"testing"

	"repro/internal/fixture"
	"repro/internal/ir"
	"repro/internal/machine"
)

func TestSampleLoopBounds(t *testing.T) {
	// Figure 1's loop after load/store elimination: two float adds on
	// the single Adder force ResMII = 2; every recurrence circuit has
	// ratio ≤ 1. The paper schedules it at II = 2.
	l := fixture.Sample(machine.Cydra())
	b, err := Compute(l)
	if err != nil {
		t.Fatal(err)
	}
	if b.ResMII != 2 {
		t.Errorf("ResMII = %d, want 2 (two FAdds on one Adder)", b.ResMII)
	}
	if b.RecMII != 1 {
		t.Errorf("RecMII = %d, want 1", b.RecMII)
	}
	if b.MII != 2 {
		t.Errorf("MII = %d, want 2", b.MII)
	}
}

func TestDividerResMII(t *testing.T) {
	// One FDiv (17 busy cycles) and one FSqrt (21) on the single
	// non-pipelined divider: ResMII = 38.
	l := fixture.Divide(machine.Cydra())
	if got := ResMII(l); got != 38 {
		t.Errorf("ResMII = %d, want 38", got)
	}
	// With a pipelined divider the same loop is memory/adder bound.
	lp := fixture.Divide(machine.PipelinedDivide())
	if got := ResMII(lp); got >= 38 {
		t.Errorf("pipelined-divider ResMII = %d, want small", got)
	}
}

func TestRecurrenceBound(t *testing.T) {
	// An accumulator chain with latency 2 around an ω=1 circuit:
	// s = fmul(s[-1], v) forces RecMII ≥ 2.
	m := machine.Cydra()
	l := ir.NewLoop("acc", m)
	v := l.NewValue("v", ir.GPR, ir.Float)
	s := l.NewValue("s", ir.RR, ir.Float)
	l.NewOp(machine.FMul, []ir.Operand{{Val: s.ID, Omega: 1}, {Val: v.ID}}, s.ID)
	l.MustFinalize()
	b, err := Compute(l)
	if err != nil {
		t.Fatal(err)
	}
	if b.RecMII != 2 {
		t.Errorf("RecMII = %d, want 2 (latency-2 self recurrence)", b.RecMII)
	}
	if b.MII != 2 {
		t.Errorf("MII = %d, want 2", b.MII)
	}
}

func TestContention(t *testing.T) {
	if !HasResourceContention(fixture.Sample(machine.Cydra())) {
		t.Error("sample loop has two adds on one adder: contention expected")
	}
	m := machine.Cydra()
	l := ir.NewLoop("single", m)
	s := l.NewValue("s", ir.RR, ir.Float)
	l.NewOp(machine.FAdd, []ir.Operand{{Val: s.ID, Omega: 1}, {Val: s.ID, Omega: 1}}, s.ID)
	l.MustFinalize()
	if HasResourceContention(l) {
		t.Error("one op per unit class: no contention expected")
	}
}

func TestCriticalOps(t *testing.T) {
	l := fixture.Sample(machine.Cydra())
	b, _ := Compute(l)
	crit := CriticalOps(l, b.MII)
	// At II = 2 the Adder instance runs 2 busy cycles: 2 ≥ 0.9·2, so
	// both FAdds are critical; the stores (1 busy on each MemPort at
	// II 2) are not (1 < 1.8).
	if !crit[0] || !crit[1] {
		t.Error("the two FAdds should be critical at II=2")
	}
	if crit[4] || crit[5] {
		t.Error("stores on separate ports should not be critical at II=2")
	}
}

func TestUsesDivider(t *testing.T) {
	l := fixture.Divide(machine.Cydra())
	found := 0
	for _, op := range l.Ops {
		if UsesDivider(l, op) {
			found++
		}
	}
	if found != 2 {
		t.Errorf("want 2 divider ops (div, sqrt), found %d", found)
	}
}
