// Package viz renders schedules as ASCII diagrams: the modulo
// reservation table (who holds which functional unit at each cycle mod
// II), a Gantt chart of one iteration, and per-value lifetime timelines
// in the style of the paper's Figure 3.
package viz

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ir"
	"repro/internal/lifetime"
	"repro/internal/machine"
)

// MRT renders the modulo reservation table of a schedule: one row per
// functional-unit instance, one column per cycle of the II, each cell
// holding the op id reserving that slot (multi-cycle divider patterns
// show as repeated ids).
func MRT(l *ir.Loop, s *ir.Schedule) string {
	type slot struct {
		kind machine.FUKind
		fu   int
	}
	rows := map[slot][]string{}
	var order []slot
	for k := 0; k < l.Mach.NumKinds(); k++ {
		kind := machine.FUKind(k)
		for fu := 0; fu < l.Mach.Count(kind); fu++ {
			sl := slot{kind, fu}
			order = append(order, sl)
			cells := make([]string, s.II)
			for i := range cells {
				cells[i] = "."
			}
			rows[sl] = cells
		}
	}
	for _, op := range l.Ops {
		info := l.Mach.Info(op.Opcode)
		sl := slot{info.Kind, op.FU}
		for i := 0; i < info.Busy; i++ {
			c := (s.Time[op.ID] + i) % s.II
			rows[sl][c] = fmt.Sprintf("%d", int(op.ID))
		}
	}
	width := 2
	for _, cells := range rows {
		for _, c := range cells {
			if len(c) > width {
				width = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "modulo reservation table (II=%d; cells are op ids)\n", s.II)
	fmt.Fprintf(&b, "%-14s", "")
	for c := 0; c < s.II; c++ {
		fmt.Fprintf(&b, " %*d", width, c)
	}
	b.WriteByte('\n')
	for _, sl := range order {
		used := false
		for _, c := range rows[sl] {
			if c != "." {
				used = true
			}
		}
		if !used {
			continue
		}
		fmt.Fprintf(&b, "%-14s", fmt.Sprintf("%v.%d", sl.kind, sl.fu))
		for _, c := range rows[sl] {
			fmt.Fprintf(&b, " %*s", width, c)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Gantt renders one iteration's schedule: ops sorted by issue cycle,
// with a bar spanning issue..issue+latency and the stage boundary grid.
func Gantt(l *ir.Loop, s *ir.Schedule) string {
	length := s.Makespan(l)
	type row struct {
		id   ir.OpID
		t    int
		lat  int
		text string
	}
	var rows []row
	for _, op := range l.Ops {
		rows = append(rows, row{
			id: op.ID, t: s.Time[op.ID], lat: l.Mach.Latency(op.Opcode),
			text: fmt.Sprintf("op%-3d %v", int(op.ID), op.Opcode),
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].t != rows[j].t {
			return rows[i].t < rows[j].t
		}
		return rows[i].id < rows[j].id
	})
	var b strings.Builder
	fmt.Fprintf(&b, "iteration schedule (II=%d, length %d; '=' issue..result, '|' stage boundary)\n", s.II, length)
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-14s ", r.text)
		for c := 0; c < length; c++ {
			switch {
			case c >= r.t && c < r.t+r.lat:
				b.WriteByte('=')
			case c%s.II == 0:
				b.WriteByte('|')
			default:
				b.WriteByte('.')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Lifetimes renders the RR-file value lifetimes of one iteration — the
// picture of the paper's Figure 3 — with the LiveVector underneath.
func Lifetimes(l *ir.Loop, s *ir.Schedule) string {
	ranges := lifetime.Ranges(l, s, ir.RR)
	sort.Slice(ranges, func(i, j int) bool {
		if ranges[i].Start != ranges[j].Start {
			return ranges[i].Start < ranges[j].Start
		}
		return ranges[i].Val < ranges[j].Val
	})
	end := 0
	for _, r := range ranges {
		if r.End > end {
			end = r.End
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "value lifetimes (one iteration; wraps every II=%d)\n", s.II)
	for _, r := range ranges {
		fmt.Fprintf(&b, "  %-10s [%3d,%3d) ", l.Value(r.Val).Name, r.Start, r.End)
		for c := 0; c < end; c++ {
			switch {
			case c >= r.Start && c < r.End:
				b.WriteByte('#')
			case c%s.II == 0:
				b.WriteByte('|')
			default:
				b.WriteByte('.')
			}
		}
		b.WriteByte('\n')
	}
	vec := lifetime.LiveVector(ranges, s.II)
	fmt.Fprintf(&b, "  LiveVector %v  → MaxLive %d\n", vec, maxOf(vec))
	return b.String()
}

func maxOf(xs []int) int {
	m := 0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
