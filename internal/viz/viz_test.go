package viz

import (
	"strings"
	"testing"

	"repro/internal/fixture"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/sched"
)

func scheduled(t *testing.T) (*ir.Loop, *ir.Schedule) {
	t.Helper()
	l := fixture.Sample(machine.Cydra())
	res, err := sched.Slack(sched.Config{}).Schedule(l)
	if err != nil || !res.OK() {
		t.Fatal("scheduling failed")
	}
	return l, res.Schedule
}

func TestMRTRendersEveryOp(t *testing.T) {
	l, s := scheduled(t)
	out := MRT(l, s)
	if !strings.Contains(out, "Adder.0") || !strings.Contains(out, "MemPort.0") {
		t.Errorf("missing unit rows:\n%s", out)
	}
	// Both adds share the single adder: its row must be fully occupied
	// at II=2 (the adder is the critical resource).
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "Adder.0") {
			cells := strings.TrimPrefix(line, "Adder.0")
			if strings.Contains(cells, ".") {
				t.Errorf("adder should be saturated at II=2:\n%s", out)
			}
		}
	}
}

func TestGanttBarsMatchLatencies(t *testing.T) {
	l, s := scheduled(t)
	out := Gantt(l, s)
	if !strings.Contains(out, "fadd") || !strings.Contains(out, "brtop") {
		t.Errorf("missing ops:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "store") {
			if n := strings.Count(line, "="); n != 1 {
				t.Errorf("store bar should span its 1-cycle latency, got %d:\n%s", n, line)
			}
		}
	}
}

func TestLifetimesShowsLiveVector(t *testing.T) {
	l := fixture.SampleCore(machine.Cydra())
	s := ir.NewSchedule(2, len(l.Ops))
	s.Time[0], s.Time[1] = 0, 1
	out := Lifetimes(l, s)
	// The paper's hand-worked numbers (Figure 4).
	if !strings.Contains(out, "[  0,  5)") || !strings.Contains(out, "[  1,  4)") {
		t.Errorf("expected the paper's lifetimes [0,5) and [1,4):\n%s", out)
	}
	if !strings.Contains(out, "[4 4]") || !strings.Contains(out, "MaxLive 4") {
		t.Errorf("expected LiveVector ⟨4,4⟩:\n%s", out)
	}
}
